// Command corrcomp is the command-line front end of the lossycorr
// library: it generates correlated fields (2D grids or 3D volumes),
// extracts their correlation statistics, runs error-bounded lossy
// compressors over them, and fits the paper's CR = α + β·log(x)
// regressions.
//
// Subcommands:
//
//	corrcomp gen       -kind gaussian -rows 256 -cols 256 -range 16 -seed 1 -out field.bin
//	corrcomp gen       -kind gaussian -dims 64,64,64 -range 6 -f32 -out vol.bin  # float32 lane
//	corrcomp analyze   -in field.bin [-window 32]   # 2D or 3D, lane + rank auto-detected
//	corrcomp analyze   -in field.bin -f32           # force the float32 compute lane
//	corrcomp compress  -in field.bin -codec sz-like -eb 1e-3
//	corrcomp sweep     -in field.bin            # the input's rank's codecs × paper bounds
//	corrcomp predict   -size 128 -train 6       # train models, select codec
//	corrcomp predict   -ndim 3 -size 24 -in vol.bin  # 3D models for a volume
//	corrcomp list                               # available compressors per rank
//
// 2D float64 fields are stored in the library's legacy binary format
// (two uint32 dimensions + float64 payload, little endian); volumes
// and float32-lane fields use the tagged "LCF1" field format (the
// float32 element tag in the rank word). Every reader auto-detects
// lane and rank, so analyze/compress/sweep run the matching pipeline:
// float32 files flow through the half-bandwidth compute lane end to
// end, with the error bound still checked on their values.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"lossycorr"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "compress":
		err = cmdCompress(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	case "entropy":
		err = cmdEntropy(os.Args[2:])
	case "sample":
		err = cmdSample(os.Args[2:])
	case "list":
		for _, ndim := range []int{2, 3} {
			for _, n := range lossycorr.CompressorsFor(ndim) {
				fmt.Printf("%s\t(%dD)\n", n, ndim)
			}
		}
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "corrcomp: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "corrcomp:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: corrcomp <gen|analyze|compress|sweep|predict|entropy|sample|list> [flags]
run "corrcomp <subcommand> -h" for the flags of each subcommand`)
}

func cmdEntropy(args []string) error {
	fs := flag.NewFlagSet("entropy", flag.ExitOnError)
	in := fs.String("in", "field.bin", "input field")
	eb := fs.Float64("eb", 1e-3, "absolute error bound")
	fs.Parse(args)

	g, err := readField2D(*in)
	if err != nil {
		return err
	}
	h, err := lossycorr.QuantizedEntropy(g, *eb)
	if err != nil {
		return err
	}
	fmt.Printf("quantized entropy at eb=%.0e: %.4f bits/value\n", *eb, h)
	fmt.Printf("entropy-bound compression ratio: %.3f\n", lossycorr.EstimateEntropyRatio(h))
	for _, name := range lossycorr.Compressors().Names() {
		res, err := lossycorr.Measure(name, g, *eb)
		if err != nil {
			return err
		}
		fmt.Printf("measured %-11s ratio: %.3f\n", name, res.Ratio)
	}
	return nil
}

func cmdSample(args []string) error {
	fs := flag.NewFlagSet("sample", flag.ExitOnError)
	in := fs.String("in", "field.bin", "input field")
	window := fs.Int("window", 32, "local window H")
	stat := fs.String("stat", "range", "statistic: range | svd")
	seed := fs.Uint64("seed", 1, "sampling seed")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all cores)")
	fs.Parse(args)

	g, err := readField2D(*in)
	if err != nil {
		return err
	}
	points, err := lossycorr.SweepSamplingFractions(g, *window, *stat, nil,
		lossycorr.SamplingOptions{Seed: *seed, Workers: *workers})
	if err != nil {
		return err
	}
	fmt.Printf("sampling sweep of local %q statistic (H=%d):\n", *stat, *window)
	fmt.Printf("%10s %12s %12s %10s\n", "fraction", "estimate", "reference", "rel.err")
	for _, p := range points {
		fmt.Printf("%10.2f %12.4f %12.4f %9.1f%%\n",
			p.Fraction, p.Estimate, p.Reference, 100*p.RelError)
	}
	return nil
}

// parseDims parses a comma-separated extent list ("64,64,64").
func parseDims(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var dims []int
	for _, tok := range strings.Split(s, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%d", &v); err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -dims entry %q", tok)
		}
		dims = append(dims, v)
	}
	return dims, nil
}

func shapeString(shape []int) string {
	parts := make([]string, len(shape))
	for i, s := range shape {
		parts[i] = fmt.Sprint(s)
	}
	return strings.Join(parts, "x")
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "gaussian", "gaussian | multi | turbulence")
	rows := fs.Int("rows", 256, "field rows (2D)")
	cols := fs.Int("cols", 256, "field cols (2D)")
	dims := fs.String("dims", "", "volume extents nz,ny,nx — switches gaussian to 3D")
	rang := fs.Float64("range", 16, "correlation range (gaussian)")
	ranges := fs.String("ranges", "4,32", "comma-separated ranges (multi)")
	seed := fs.Uint64("seed", 1, "generator seed")
	out := fs.String("out", "field.bin", "output file")
	pgm := fs.Bool("pgm", false, "also write a .pgm preview (2D only)")
	f32 := fs.Bool("f32", false, "write the float32 lane (half the bytes; values narrowed once at generation)")
	fs.Parse(args)

	d3, err := parseDims(*dims)
	if err != nil {
		return err
	}
	var g *lossycorr.Grid
	var fld *lossycorr.Field
	switch *kind {
	case "gaussian":
		if len(d3) == 3 {
			var v *lossycorr.Volume
			v, err = lossycorr.GenerateGaussian3D(lossycorr.Gaussian3DParams{
				Nz: d3[0], Ny: d3[1], Nx: d3[2], Range: *rang, Seed: *seed,
			})
			if err == nil {
				fld = lossycorr.FieldFromVolume(v)
			}
		} else if len(d3) != 0 {
			return fmt.Errorf("-dims wants 3 extents (nz,ny,nx), got %d", len(d3))
		} else {
			g, err = lossycorr.GenerateGaussian(lossycorr.GaussianParams{
				Rows: *rows, Cols: *cols, Range: *rang, Seed: *seed,
			})
		}
	case "multi":
		var rs []float64
		for _, tok := range strings.Split(*ranges, ",") {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%g", &v); err != nil {
				return fmt.Errorf("bad -ranges entry %q", tok)
			}
			rs = append(rs, v)
		}
		g, err = lossycorr.GenerateMultiGaussian(lossycorr.MultiGaussianParams{
			Rows: *rows, Cols: *cols, Ranges: rs, Seed: *seed,
		})
	case "turbulence":
		var slices []*lossycorr.Grid
		slices, _, err = lossycorr.TurbulenceSlices(*rows, 1, 1.6, *seed)
		if err == nil {
			g = slices[0]
		}
	default:
		return fmt.Errorf("unknown -kind %q", *kind)
	}
	if err != nil {
		return err
	}
	if fld == nil {
		fld = lossycorr.FieldFromGrid(g)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if *f32 {
		err = fld.Narrow().WriteBinary(f)
	} else {
		err = fld.WriteBinary(f)
	}
	if err != nil {
		return err
	}
	if *pgm {
		if g == nil {
			return fmt.Errorf("-pgm previews are 2D only")
		}
		p, err := os.Create(*out + ".pgm")
		if err != nil {
			return err
		}
		defer p.Close()
		if err := g.WritePGM(p); err != nil {
			return err
		}
	}
	st := fld.Summary()
	fmt.Printf("wrote %s: %s min=%.4g max=%.4g var=%.4g\n",
		*out, shapeString(fld.Shape), st.Min, st.Max, st.Variance)
	return nil
}

func readField(path string) (*lossycorr.Field, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return lossycorr.ReadField(f)
}

// readFieldAny reads a field on whichever lane the file declares:
// exactly one return is non-nil. Local files are trusted, so the
// element budget only guards against corrupted headers.
func readFieldAny(path string) (*lossycorr.Field, *lossycorr.Field32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	return lossycorr.ReadFieldAny(f, 1<<31)
}

func readField2D(path string) (*lossycorr.Grid, error) {
	fld, err := readField(path)
	if err != nil {
		return nil, err
	}
	g, err := fld.AsGrid()
	if err != nil {
		return nil, fmt.Errorf("%s: this subcommand is 2D only (%w)", path, err)
	}
	return g, nil
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	in := fs.String("in", "field.bin", "input field (2D or 3D)")
	window := fs.Int("window", 32, "local statistics window H")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all cores)")
	gram := fs.Bool("gram", true, "Gram-matrix fast path for the local SVD statistic (-gram=false restores the full-SVD reference path)")
	vfft := fs.Bool("vfft", false, "FFT exact engine for the global variogram scan (real-input half-spectrum transforms; ~40% of the former complex-path memory)")
	f32 := fs.Bool("f32", false, "run the float32 compute lane (a float64 input is narrowed first; float32 files use it automatically)")
	membudget := fs.String("membudget", "", "out-of-core memory budget with optional k/m/g suffix (e.g. 64m); fields that do not fit are streamed in budget-sized tiles, bit-identical windowed statistics")
	statsSel := fs.String("stats", "", "comma-separated statistic kernels to compute (e.g. variogram,svd); empty = all registered")
	fs.Parse(args)

	sel := splitStatsFlag(*statsSel)
	if *membudget != "" {
		budget, err := parseBytes(*membudget)
		if err != nil {
			return fmt.Errorf("-membudget: %w", err)
		}
		if *f32 {
			return fmt.Errorf("-f32 cannot combine with -membudget: an out-of-core field runs on its stored lane")
		}
		return analyzeOutOfCore(*in, budget, *window, *workers, *gram, *vfft, sel)
	}

	fld, n32, err := readFieldAny(*in)
	if err != nil {
		return err
	}
	if *f32 && n32 == nil {
		n32, fld = fld.Narrow(), nil
	}
	gm := lossycorr.SVDGramOn
	if !*gram {
		gm = lossycorr.SVDGramOff
	}
	opts := lossycorr.AnalysisOptions{
		Window: *window, Workers: *workers, SVDGram: gm, VariogramFFT: *vfft,
		Stats: sel,
	}
	var stats lossycorr.Statistics
	var shape []int
	if n32 != nil {
		stats, err = lossycorr.AnalyzeField32(n32, opts)
		shape = n32.Shape
	} else {
		stats, err = lossycorr.AnalyzeField(fld, opts)
		shape = fld.Shape
	}
	if err != nil {
		return err
	}
	lane := "float64"
	if n32 != nil {
		lane = "float32"
	}
	fmt.Printf("field: %s (%s lane)\n", shapeString(shape), lane)
	printStats(stats, *window)
	return nil
}

// splitStatsFlag turns the -stats flag value into a kernel selection
// (nil when the flag is unset, meaning all registered kernels).
func splitStatsFlag(v string) []string {
	if v == "" {
		return nil
	}
	var sel []string
	for _, part := range strings.Split(v, ",") {
		if name := strings.TrimSpace(part); name != "" {
			sel = append(sel, name)
		}
	}
	return sel
}

// printStats reports the computed statistics — only the ones actually
// present in the result set (a -stats subset computes no others), with
// any extra registered-kernel outputs after the paper's four.
func printStats(stats lossycorr.Statistics, window int) {
	if stats.Has(lossycorr.StatGlobalRange) {
		fmt.Printf("estimated global variogram range: %.4f\n", stats.GlobalRange())
	}
	if stats.Has(lossycorr.StatGlobalSill) {
		fmt.Printf("fitted sill:                      %.4f\n", stats.GlobalSill())
	}
	if stats.Has(lossycorr.StatLocalRangeStd) {
		fmt.Printf("std of local variogram ranges:    %.4f (H=%d)\n", stats.LocalRangeStd(), window)
	}
	if stats.Has(lossycorr.StatLocalSVDStd) {
		fmt.Printf("std of local SVD truncation:      %.4f (H=%d)\n", stats.LocalSVDStd(), window)
	}
	builtin := map[string]bool{
		lossycorr.StatGlobalRange: true, lossycorr.StatGlobalSill: true,
		lossycorr.StatLocalRangeStd: true, lossycorr.StatLocalSVDStd: true,
	}
	var extra []string
	for k := range stats {
		if !builtin[k] {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	for _, k := range extra {
		fmt.Printf("%s: %.4f\n", k, stats[k])
	}
}

// parseBytes parses a byte count with an optional k/m/g suffix
// (powers of 1024, case-insensitive).
func parseBytes(s string) (int64, error) {
	mult := int64(1)
	if n := len(s); n > 0 {
		switch s[n-1] {
		case 'k', 'K':
			mult, s = 1<<10, s[:n-1]
		case 'm', 'M':
			mult, s = 1<<20, s[:n-1]
		case 'g', 'G':
			mult, s = 1<<30, s[:n-1]
		}
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte count %q", s)
	}
	if v <= 0 {
		return 0, fmt.Errorf("byte count must be positive, got %q", s)
	}
	return v * mult, nil
}

// analyzeOutOfCore runs analyze through the tile-streaming reader under
// a transform-pool byte budget, reporting the observed peak against it.
func analyzeOutOfCore(in string, budget int64, window, workers int, gram, vfft bool, sel []string) error {
	tr, err := lossycorr.OpenFieldTilesMapped(in, 1<<31)
	if err != nil {
		return err
	}
	defer tr.Close()
	gm := lossycorr.SVDGramOn
	if !gram {
		gm = lossycorr.SVDGramOff
	}
	opts := lossycorr.AnalysisOptions{
		Window: window, Workers: workers, SVDGram: gm, VariogramFFT: vfft,
		MemBudget: budget, Stats: sel,
	}
	lossycorr.ResetTransformPeakBytes()
	stats, err := lossycorr.AnalyzeReader(tr, opts)
	if err != nil {
		return err
	}
	peak := lossycorr.TransformPeakBytes()
	lane := "float64"
	if tr.Float32Lane() {
		lane = "float32"
	}
	fmt.Printf("field: %s (%s lane, out-of-core)\n", shapeString(tr.Shape()), lane)
	printStats(stats, window)
	verdict := "ok"
	if peak > budget {
		verdict = "OVER"
	}
	fmt.Printf("peak transform bytes: %d (budget %d, %s)\n", peak, budget, verdict)
	return nil
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	in := fs.String("in", "field.bin", "input field (2D or 3D)")
	codec := fs.String("codec", "", "compressor name (default: first codec of the input's rank)")
	eb := fs.Float64("eb", 1e-3, "absolute error bound")
	fs.Parse(args)

	fld, n32, err := readFieldAny(*in)
	if err != nil {
		return err
	}
	rank := 0
	if n32 != nil {
		rank = n32.NDim()
	} else {
		rank = fld.NDim()
	}
	name := *codec
	if name == "" {
		if rank == 2 {
			name = "sz-like" // historical default
		} else {
			names := lossycorr.CompressorsFor(rank)
			if len(names) == 0 {
				return fmt.Errorf("no codecs for rank-%d fields", rank)
			}
			name = names[0]
		}
	}
	var res lossycorr.Result
	if n32 != nil {
		res, err = lossycorr.MeasureField32(name, n32, *eb)
	} else {
		res, err = lossycorr.MeasureField(name, fld, *eb)
	}
	if err != nil {
		return err
	}
	printResult(res)
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	in := fs.String("in", "field.bin", "input field (2D or 3D)")
	fs.Parse(args)

	fld, n32, err := readFieldAny(*in)
	if err != nil {
		return err
	}
	rank := 0
	if n32 != nil {
		rank = n32.NDim()
	} else {
		rank = fld.NDim()
	}
	for _, name := range lossycorr.CompressorsFor(rank) {
		for _, eb := range lossycorr.PaperErrorBounds {
			var res lossycorr.Result
			if n32 != nil {
				res, err = lossycorr.MeasureField32(name, n32, eb)
			} else {
				res, err = lossycorr.MeasureField(name, fld, eb)
			}
			if err != nil {
				return err
			}
			printResult(res)
		}
	}
	return nil
}

func printResult(res lossycorr.Result) {
	fmt.Printf("%-11s eb=%.0e ratio=%8.3f bytes=%d maxErr=%.3e psnr=%.1fdB bound=%v\n",
		res.Compressor, res.ErrorBound, res.Ratio, res.CompressedSize,
		res.MaxAbsError, res.PSNR, res.BoundOK)
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	size := fs.Int("size", 0, "training field edge (0 = 128 for 2D, 24 for 3D)")
	train := fs.Int("train", 6, "number of training ranges")
	ndim := fs.Int("ndim", 0, "training rank: 2 or 3 (0 = follow -in, else 2)")
	eb := fs.Float64("eb", 1e-3, "error bound for selection")
	seed := fs.Uint64("seed", 1, "seed")
	in := fs.String("in", "", "optional field (2D or 3D) to select a compressor for")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all cores)")
	folds := fs.Int("folds", 0, "cross-validation folds (0 = 5, negative disables)")
	save := fs.String("save", "", "write the trained model as versioned JSON to this path")
	load := fs.String("load", "", "serve from a saved model instead of training")
	fs.Parse(args)

	if *load != "" && *save != "" {
		return fmt.Errorf("-load and -save are mutually exclusive (a loaded model is already saved)")
	}

	var target *lossycorr.Field
	var err error
	if *in != "" {
		if target, err = readField(*in); err != nil {
			return err
		}
	}
	rank := *ndim
	if rank == 0 {
		rank = 2
		if target != nil {
			rank = target.NDim()
		}
	}
	if rank != 2 && rank != 3 {
		return fmt.Errorf("-ndim must be 2 or 3, got %d", rank)
	}
	if target != nil && target.NDim() != rank {
		return fmt.Errorf("-in is rank %d but -ndim asked for %d", target.NDim(), rank)
	}
	edge := *size
	if edge == 0 {
		edge = 128
		if rank == 3 {
			edge = 24
		}
	}

	var p *lossycorr.Predictor
	var fields []*lossycorr.Field
	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			return err
		}
		p, err = lossycorr.LoadPredictor(f)
		f.Close()
		if err != nil {
			return err
		}
		prov := p.Provenance()
		if prov.Rank != 0 && target != nil && prov.Rank != rank {
			return fmt.Errorf("model %s was trained on rank %d fields, -in is rank %d", *load, prov.Rank, rank)
		}
		fmt.Printf("loaded model %s (source %s, %d measurements)\n", *load, prov.Source, prov.Measurements)
	} else {
		var labels []float64
		for i := 0; i < *train; i++ {
			if rank == 2 {
				rang := float64(edge) / 64 * float64(int(2)<<uint(i%6))
				f, err := lossycorr.GenerateGaussian(lossycorr.GaussianParams{
					Rows: edge, Cols: edge, Range: rang, Seed: *seed + uint64(i),
				})
				if err != nil {
					return err
				}
				fields = append(fields, lossycorr.FieldFromGrid(f))
				labels = append(labels, rang)
			} else {
				rang := float64(edge) / 16 * float64(int(1)<<uint(i%3))
				v, err := lossycorr.GenerateGaussian3D(lossycorr.Gaussian3DParams{
					Nz: edge, Ny: edge, Nx: edge, Range: rang, Seed: *seed + uint64(i),
				})
				if err != nil {
					return err
				}
				fields = append(fields, lossycorr.FieldFromVolume(v))
				labels = append(labels, rang)
			}
		}
		ms, err := lossycorr.MeasureFieldSet("train", fields, labels, lossycorr.MeasureOptions{
			Analysis:    lossycorr.AnalysisOptions{SkipLocal: true},
			ErrorBounds: []float64{*eb},
			Workers:     *workers,
		})
		if err != nil {
			return err
		}
		p, err = lossycorr.TrainPredictorOpts(ms, lossycorr.XGlobalRange, lossycorr.TrainOptions{
			Folds: *folds, Seed: *seed,
		})
		if err != nil {
			return err
		}
		p.SetProvenance(lossycorr.ModelProvenance{
			Source: "train", Rank: rank, TrainFields: *train, TrainEdge: edge,
			Seed: *seed, Measurements: len(ms),
		})
	}

	fmt.Println("models:", strings.Join(p.Models(), " "))
	// Models() renders bounds with %g, which ParseFloat inverts exactly,
	// so the listing doubles as the CV lookup key.
	for _, name := range p.Models() {
		at := strings.LastIndex(name, "@")
		bound, err := strconv.ParseFloat(name[at+1:], 64)
		if err != nil {
			continue
		}
		if cv, ok := p.CV(name[:at], bound); ok {
			fmt.Printf("  %s: %s\n", name, cv)
		}
	}

	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			return err
		}
		if err := lossycorr.SavePredictor(f, p); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("saved model to %s\n", *save)
	}

	if target == nil {
		if len(fields) == 0 {
			return nil // -load without -in: model inspection only
		}
		target = fields[len(fields)-1]
	}
	stats, err := lossycorr.AnalyzeField(target, lossycorr.AnalysisOptions{SkipLocal: true})
	if err != nil {
		return err
	}
	sel, err := p.SelectCompressor(*eb, stats)
	if err != nil {
		return err
	}
	pred, err := p.PredictRatioInterval(sel.Compressor, *eb, stats, 0)
	if err != nil {
		return err
	}
	fmt.Printf("estimated range %.3f → selected %s (predicted CR %.2f [%.2f, %.2f] at %g%% PI)\n",
		stats.GlobalRange(), sel.Compressor, pred.Ratio, pred.Lo, pred.Hi, pred.Level*100)
	res, err := lossycorr.MeasureField(sel.Compressor, target, *eb)
	if err != nil {
		return err
	}
	fmt.Printf("actual CR with %s: %.2f\n", sel.Compressor, res.Ratio)
	return nil
}
