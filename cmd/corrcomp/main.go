// Command corrcomp is the command-line front end of the lossycorr
// library: it generates correlated fields, extracts their correlation
// statistics, runs error-bounded lossy compressors over them, and fits
// the paper's CR = α + β·log(x) regressions.
//
// Subcommands:
//
//	corrcomp gen       -kind gaussian -rows 256 -cols 256 -range 16 -seed 1 -out field.bin
//	corrcomp analyze   -in field.bin [-window 32]
//	corrcomp compress  -in field.bin -codec sz-like -eb 1e-3 [-verify]
//	corrcomp sweep     -in field.bin            # all codecs × paper bounds
//	corrcomp predict   -size 128 -train 6       # train models, select codec
//	corrcomp list                               # available compressors
//
// Fields are stored in the library's simple binary format (two uint32
// dimensions + float64 payload, little endian); -pgm dumps a grayscale
// preview next to the output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lossycorr"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "compress":
		err = cmdCompress(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "predict":
		err = cmdPredict(os.Args[2:])
	case "entropy":
		err = cmdEntropy(os.Args[2:])
	case "sample":
		err = cmdSample(os.Args[2:])
	case "list":
		for _, n := range lossycorr.Compressors().Names() {
			fmt.Println(n)
		}
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "corrcomp: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "corrcomp:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: corrcomp <gen|analyze|compress|sweep|predict|entropy|sample|list> [flags]
run "corrcomp <subcommand> -h" for the flags of each subcommand`)
}

func cmdEntropy(args []string) error {
	fs := flag.NewFlagSet("entropy", flag.ExitOnError)
	in := fs.String("in", "field.bin", "input field")
	eb := fs.Float64("eb", 1e-3, "absolute error bound")
	fs.Parse(args)

	g, err := readField(*in)
	if err != nil {
		return err
	}
	h, err := lossycorr.QuantizedEntropy(g, *eb)
	if err != nil {
		return err
	}
	fmt.Printf("quantized entropy at eb=%.0e: %.4f bits/value\n", *eb, h)
	fmt.Printf("entropy-bound compression ratio: %.3f\n", lossycorr.EstimateEntropyRatio(h))
	for _, name := range lossycorr.Compressors().Names() {
		res, err := lossycorr.Measure(name, g, *eb)
		if err != nil {
			return err
		}
		fmt.Printf("measured %-11s ratio: %.3f\n", name, res.Ratio)
	}
	return nil
}

func cmdSample(args []string) error {
	fs := flag.NewFlagSet("sample", flag.ExitOnError)
	in := fs.String("in", "field.bin", "input field")
	window := fs.Int("window", 32, "local window H")
	stat := fs.String("stat", "range", "statistic: range | svd")
	seed := fs.Uint64("seed", 1, "sampling seed")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all cores)")
	fs.Parse(args)

	g, err := readField(*in)
	if err != nil {
		return err
	}
	points, err := lossycorr.SweepSamplingFractions(g, *window, *stat, nil,
		lossycorr.SamplingOptions{Seed: *seed, Workers: *workers})
	if err != nil {
		return err
	}
	fmt.Printf("sampling sweep of local %q statistic (H=%d):\n", *stat, *window)
	fmt.Printf("%10s %12s %12s %10s\n", "fraction", "estimate", "reference", "rel.err")
	for _, p := range points {
		fmt.Printf("%10.2f %12.4f %12.4f %9.1f%%\n",
			p.Fraction, p.Estimate, p.Reference, 100*p.RelError)
	}
	return nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	kind := fs.String("kind", "gaussian", "gaussian | multi | turbulence")
	rows := fs.Int("rows", 256, "field rows")
	cols := fs.Int("cols", 256, "field cols")
	rang := fs.Float64("range", 16, "correlation range (gaussian)")
	ranges := fs.String("ranges", "4,32", "comma-separated ranges (multi)")
	seed := fs.Uint64("seed", 1, "generator seed")
	out := fs.String("out", "field.bin", "output file")
	pgm := fs.Bool("pgm", false, "also write a .pgm preview")
	fs.Parse(args)

	var g *lossycorr.Grid
	var err error
	switch *kind {
	case "gaussian":
		g, err = lossycorr.GenerateGaussian(lossycorr.GaussianParams{
			Rows: *rows, Cols: *cols, Range: *rang, Seed: *seed,
		})
	case "multi":
		var rs []float64
		for _, tok := range strings.Split(*ranges, ",") {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimSpace(tok), "%g", &v); err != nil {
				return fmt.Errorf("bad -ranges entry %q", tok)
			}
			rs = append(rs, v)
		}
		g, err = lossycorr.GenerateMultiGaussian(lossycorr.MultiGaussianParams{
			Rows: *rows, Cols: *cols, Ranges: rs, Seed: *seed,
		})
	case "turbulence":
		var slices []*lossycorr.Grid
		slices, _, err = lossycorr.TurbulenceSlices(*rows, 1, 1.6, *seed)
		if err == nil {
			g = slices[0]
		}
	default:
		return fmt.Errorf("unknown -kind %q", *kind)
	}
	if err != nil {
		return err
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := g.WriteBinary(f); err != nil {
		return err
	}
	if *pgm {
		p, err := os.Create(*out + ".pgm")
		if err != nil {
			return err
		}
		defer p.Close()
		if err := g.WritePGM(p); err != nil {
			return err
		}
	}
	st := g.Summary()
	fmt.Printf("wrote %s: %dx%d min=%.4g max=%.4g var=%.4g\n",
		*out, g.Rows, g.Cols, st.Min, st.Max, st.Variance)
	return nil
}

func readField(path string) (*lossycorr.Grid, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return lossycorr.ReadGrid(f)
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	in := fs.String("in", "field.bin", "input field")
	window := fs.Int("window", 32, "local statistics window H")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all cores)")
	fs.Parse(args)

	g, err := readField(*in)
	if err != nil {
		return err
	}
	stats, err := lossycorr.Analyze(g, lossycorr.AnalysisOptions{Window: *window, Workers: *workers})
	if err != nil {
		return err
	}
	fmt.Printf("field: %dx%d\n", g.Rows, g.Cols)
	fmt.Printf("estimated global variogram range: %.4f\n", stats.GlobalRange)
	fmt.Printf("fitted sill:                      %.4f\n", stats.GlobalSill)
	fmt.Printf("std of local variogram ranges:    %.4f (H=%d)\n", stats.LocalRangeStd, *window)
	fmt.Printf("std of local SVD truncation:      %.4f (H=%d)\n", stats.LocalSVDStd, *window)
	return nil
}

func cmdCompress(args []string) error {
	fs := flag.NewFlagSet("compress", flag.ExitOnError)
	in := fs.String("in", "field.bin", "input field")
	codec := fs.String("codec", "sz-like", "compressor name (see corrcomp list)")
	eb := fs.Float64("eb", 1e-3, "absolute error bound")
	fs.Parse(args)

	g, err := readField(*in)
	if err != nil {
		return err
	}
	res, err := lossycorr.Measure(*codec, g, *eb)
	if err != nil {
		return err
	}
	printResult(res)
	return nil
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	in := fs.String("in", "field.bin", "input field")
	fs.Parse(args)

	g, err := readField(*in)
	if err != nil {
		return err
	}
	for _, name := range lossycorr.Compressors().Names() {
		for _, eb := range lossycorr.PaperErrorBounds {
			res, err := lossycorr.Measure(name, g, eb)
			if err != nil {
				return err
			}
			printResult(res)
		}
	}
	return nil
}

func printResult(res lossycorr.Result) {
	fmt.Printf("%-11s eb=%.0e ratio=%8.3f bytes=%d maxErr=%.3e psnr=%.1fdB bound=%v\n",
		res.Compressor, res.ErrorBound, res.Ratio, res.CompressedSize,
		res.MaxAbsError, res.PSNR, res.BoundOK)
}

func cmdPredict(args []string) error {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	size := fs.Int("size", 128, "training field edge")
	train := fs.Int("train", 6, "number of training ranges")
	eb := fs.Float64("eb", 1e-3, "error bound for selection")
	seed := fs.Uint64("seed", 1, "seed")
	in := fs.String("in", "", "optional field to select a compressor for")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all cores)")
	fs.Parse(args)

	var fields []*lossycorr.Grid
	var labels []float64
	for i := 0; i < *train; i++ {
		rang := float64(*size) / 64 * float64(int(2)<<uint(i%6))
		f, err := lossycorr.GenerateGaussian(lossycorr.GaussianParams{
			Rows: *size, Cols: *size, Range: rang, Seed: *seed + uint64(i),
		})
		if err != nil {
			return err
		}
		fields = append(fields, f)
		labels = append(labels, rang)
	}
	ms, err := lossycorr.MeasureFields("train", fields, labels, lossycorr.MeasureOptions{
		Analysis:    lossycorr.AnalysisOptions{SkipLocal: true},
		ErrorBounds: []float64{*eb},
		Workers:     *workers,
	})
	if err != nil {
		return err
	}
	p, err := lossycorr.TrainPredictor(ms, lossycorr.XGlobalRange)
	if err != nil {
		return err
	}
	fmt.Println("trained models:", strings.Join(p.Models(), " "))
	target := fields[len(fields)-1]
	if *in != "" {
		target, err = readField(*in)
		if err != nil {
			return err
		}
	}
	stats, err := lossycorr.Analyze(target, lossycorr.AnalysisOptions{SkipLocal: true})
	if err != nil {
		return err
	}
	sel, err := p.SelectCompressor(*eb, stats)
	if err != nil {
		return err
	}
	fmt.Printf("estimated range %.3f → selected %s (predicted CR %.2f)\n",
		stats.GlobalRange, sel.Compressor, sel.Predicted)
	res, err := lossycorr.Measure(sel.Compressor, target, *eb)
	if err != nil {
		return err
	}
	fmt.Printf("actual CR with %s: %.2f\n", sel.Compressor, res.Ratio)
	return nil
}
