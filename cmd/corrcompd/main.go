// Command corrcompd serves the correlation-analysis pipeline over
// HTTP: analyze / measure / predict endpoints with async jobs, a
// content-addressed result cache, and cooperative cancellation.
// All configuration is environment variables (CORRCOMPD_*); see
// internal/service.Config for the full list.
package main

import (
	"context"
	"log"
	"os"
	"os/signal"
	"syscall"

	"lossycorr/internal/service"
)

func main() {
	cfg, err := service.ConfigFromEnv()
	if err != nil {
		log.Fatalln("corrcompd:", err)
	}
	srv := service.New(cfg)
	defer srv.Close()
	srv.Logf = log.Printf

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.Run(ctx); err != nil {
		log.Fatalln("corrcompd:", err)
	}
}
