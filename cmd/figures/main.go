// Command figures regenerates every figure of the paper's evaluation
// as text tables (and optional PGM images for Figure 2).
//
//	figures -fig all  -size 256 -reps 2 -slices 6 -out figures/
//	figures -fig 3    -size 128
//
// Figure 1 is the illustrative variogram, Figure 2 the dataset gallery,
// and Figures 3–7 the CR-versus-statistic panels with their fitted
// α + β·log(x) regressions in the legends (the series the paper plots).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"lossycorr"
)

func main() {
	fig := flag.String("fig", "all", `figure to regenerate: 1..7 or "all"`)
	size := flag.Int("size", 256, "field edge (paper: 1028)")
	reps := flag.Int("reps", 2, "replicates per range")
	slices := flag.Int("slices", 6, "Miranda-substitute snapshots")
	seed := flag.Uint64("seed", 1, "experiment seed")
	workers := flag.Int("workers", 0, "worker goroutines for measurement (0 = all cores)")
	outDir := flag.String("out", "", "directory for per-figure files (default: stdout)")
	pgm := flag.Bool("pgm", false, "write PGM images for figure 2 (needs -out)")
	flag.Parse()

	suite := lossycorr.NewSuite(lossycorr.FigureConfig{
		Size:          *size,
		Replicates:    *reps,
		MirandaSlices: *slices,
		Seed:          *seed,
		Workers:       *workers,
	})

	sink := func(name string) (io.Writer, func() error, error) {
		if *outDir == "" {
			fmt.Printf("\n##### %s #####\n", name)
			return os.Stdout, func() error { return nil }, nil
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return nil, nil, err
		}
		f, err := os.Create(filepath.Join(*outDir, name))
		if err != nil {
			return nil, nil, err
		}
		return f, f.Close, nil
	}

	var pgmSink func(string) (io.WriteCloser, error)
	if *pgm && *outDir != "" {
		pgmSink = func(name string) (io.WriteCloser, error) {
			return os.Create(filepath.Join(*outDir, name))
		}
	}

	run := func(n int) error {
		w, closer, err := sink(fmt.Sprintf("fig%d.txt", n))
		if err != nil {
			return err
		}
		defer closer()
		switch n {
		case 1:
			return suite.Figure1(w)
		case 2:
			return suite.Figure2(w, pgmSink)
		default:
			f, err := suite.Figure(n)
			if err != nil {
				return err
			}
			return f.Render(w)
		}
	}

	var figs []int
	if *fig == "all" {
		figs = []int{1, 2, 3, 4, 5, 6, 7}
	} else {
		var n int
		if _, err := fmt.Sscanf(*fig, "%d", &n); err != nil || n < 1 || n > 7 {
			fmt.Fprintf(os.Stderr, "figures: bad -fig %q (want 1..7 or all)\n", *fig)
			os.Exit(2)
		}
		figs = []int{n}
	}
	for _, n := range figs {
		if err := run(n); err != nil {
			fmt.Fprintf(os.Stderr, "figures: fig%d: %v\n", n, err)
			os.Exit(1)
		}
	}
}
