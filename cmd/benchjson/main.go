// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report — the perf-regression record CI uploads
// as BENCH_pr3.json. It parses the standard benchmark metrics (ns/op,
// B/op, allocs/op, MB/s) plus every custom gauge the harness reports
// (CR:*, beta:*, R2:*, ratio, …) into one metrics map per benchmark,
// so two runs can be diffed with nothing more than jq.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -benchmem -run='^$' ./... | benchjson -out BENCH.json
//	benchjson bench.txt            # read a saved log instead of stdin
//
// Comparing two records:
//
//	jq -r '.benchmarks[] | [.name, .ns_per_op, .allocs_per_op] | @tsv' BENCH_a.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name        string             `json:"name"`
	Pkg         string             `json:"pkg,omitempty"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op,omitempty"`
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	MBPerS      float64            `json:"mb_per_s,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	Schema     string      `json:"schema"`
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parse reads `go test -bench` output and collects every benchmark
// line, tracking the current package from `pkg:` headers.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{Schema: "lossycorr-bench/v1"}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos: "))
			continue
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch: "))
			continue
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("benchjson: %w in line %q", err, line)
		}
		if b == nil {
			continue // a Benchmark... line without results (e.g. a group header)
		}
		b.Pkg = pkg
		rep.Benchmarks = append(rep.Benchmarks, *b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseLine parses one result line: name, iteration count, then
// (value, unit) pairs.
func parseLine(line string) (*Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, nil // "BenchmarkFoo \t--- FAIL" and similar
	}
	b := &Benchmark{Name: fields[0], Iterations: iters}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return nil, fmt.Errorf("odd value/unit field count")
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", rest[i])
		}
		unit := rest[i+1]
		switch unit {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BytesPerOp = v
		case "allocs/op":
			b.AllocsPerOp = v
		case "MB/s":
			b.MBPerS = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, nil
}

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	rep, err := parse(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
