package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: lossycorr
cpu: AMD EPYC 7B13
BenchmarkFig1Variogram-8   	       1	 123456789 ns/op
BenchmarkSZLikeCompress-8  	     100	  12345678 ns/op	  42.50 MB/s	  123456 B/op	     789 allocs/op	  11.23 ratio
BenchmarkFig3GaussianGlobalRange-8	       1	999 ns/op	 3.21 CR:sz-like@1e-03	 -1.50 beta:sz-like@1e-03	 0.95 R2:sz-like@1e-03
PASS
ok  	lossycorr	12.3s
pkg: lossycorr/internal/variogram
BenchmarkVariogramExact/n=512-8 	       1	19468307793 ns/op
BenchmarkVariogramFFT/n=512-8   	       4	 305570735 ns/op
PASS
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "lossycorr-bench/v1" || rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 5 {
		t.Fatalf("%d benchmarks, want 5", len(rep.Benchmarks))
	}
	sz := rep.Benchmarks[1]
	if sz.Name != "BenchmarkSZLikeCompress-8" || sz.Pkg != "lossycorr" {
		t.Fatalf("sz: %+v", sz)
	}
	if sz.Iterations != 100 || sz.NsPerOp != 12345678 || sz.BytesPerOp != 123456 ||
		sz.AllocsPerOp != 789 || sz.MBPerS != 42.5 || sz.Metrics["ratio"] != 11.23 {
		t.Fatalf("sz fields: %+v", sz)
	}
	fig := rep.Benchmarks[2]
	if fig.Metrics["CR:sz-like@1e-03"] != 3.21 || fig.Metrics["beta:sz-like@1e-03"] != -1.5 ||
		fig.Metrics["R2:sz-like@1e-03"] != 0.95 {
		t.Fatalf("gauges: %+v", fig.Metrics)
	}
	vf := rep.Benchmarks[4]
	if vf.Name != "BenchmarkVariogramFFT/n=512-8" || vf.Pkg != "lossycorr/internal/variogram" {
		t.Fatalf("vf: %+v", vf)
	}
	// The headline check of the perf record: FFT beats exact by the
	// issue's required factor on the sample numbers.
	ex := rep.Benchmarks[3]
	if ex.NsPerOp/vf.NsPerOp < 5 {
		t.Fatalf("sample speedup %v < 5", ex.NsPerOp/vf.NsPerOp)
	}
}

func TestParseSkipsMalformed(t *testing.T) {
	rep, err := parse(strings.NewReader("BenchmarkBroken-8\nBenchmarkAlso --- FAIL\nnot a line\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("expected no benchmarks, got %+v", rep.Benchmarks)
	}
	if _, err := parse(strings.NewReader("BenchmarkOdd-8 3 42 ns/op 7\n")); err == nil {
		t.Fatal("expected odd-field error")
	}
	if _, err := parse(strings.NewReader("BenchmarkBad-8 3 xx ns/op\n")); err == nil {
		t.Fatal("expected bad-value error")
	}
}
