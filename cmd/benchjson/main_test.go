package main

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: lossycorr
cpu: AMD EPYC 7B13
BenchmarkFig1Variogram-8   	       1	 123456789 ns/op
BenchmarkSZLikeCompress-8  	     100	  12345678 ns/op	  42.50 MB/s	  123456 B/op	     789 allocs/op	  11.23 ratio
BenchmarkFig3GaussianGlobalRange-8	       1	999 ns/op	 3.21 CR:sz-like@1e-03	 -1.50 beta:sz-like@1e-03	 0.95 R2:sz-like@1e-03
PASS
ok  	lossycorr	12.3s
pkg: lossycorr/internal/variogram
BenchmarkVariogramExact/n=512-8 	       1	19468307793 ns/op
BenchmarkVariogramFFT/n=512-8   	       4	 305570735 ns/op
PASS
`

func TestParse(t *testing.T) {
	rep, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != "lossycorr-bench/v1" || rep.Goos != "linux" || rep.Goarch != "amd64" {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 5 {
		t.Fatalf("%d benchmarks, want 5", len(rep.Benchmarks))
	}
	sz := rep.Benchmarks[1]
	if sz.Name != "BenchmarkSZLikeCompress-8" || sz.Pkg != "lossycorr" {
		t.Fatalf("sz: %+v", sz)
	}
	if sz.Iterations != 100 || sz.NsPerOp != 12345678 || sz.BytesPerOp != 123456 ||
		sz.AllocsPerOp != 789 || sz.MBPerS != 42.5 || sz.Metrics["ratio"] != 11.23 {
		t.Fatalf("sz fields: %+v", sz)
	}
	fig := rep.Benchmarks[2]
	if fig.Metrics["CR:sz-like@1e-03"] != 3.21 || fig.Metrics["beta:sz-like@1e-03"] != -1.5 ||
		fig.Metrics["R2:sz-like@1e-03"] != 0.95 {
		t.Fatalf("gauges: %+v", fig.Metrics)
	}
	vf := rep.Benchmarks[4]
	if vf.Name != "BenchmarkVariogramFFT/n=512-8" || vf.Pkg != "lossycorr/internal/variogram" {
		t.Fatalf("vf: %+v", vf)
	}
	// The headline check of the perf record: FFT beats exact by the
	// issue's required factor on the sample numbers.
	ex := rep.Benchmarks[3]
	if ex.NsPerOp/vf.NsPerOp < 5 {
		t.Fatalf("sample speedup %v < 5", ex.NsPerOp/vf.NsPerOp)
	}
}

// TestLoadSniffsFormat pins the dual-input contract: the same loader
// accepts raw bench text and an already-converted JSON report, so the
// baseline gate works live in CI and offline on committed records.
func TestLoadSniffsFormat(t *testing.T) {
	fromText, err := load(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(fromText.Benchmarks) != 5 {
		t.Fatalf("text: %d benchmarks, want 5", len(fromText.Benchmarks))
	}
	js, err := json.Marshal(fromText)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := load(strings.NewReader("\n  " + string(js)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromText, fromJSON) {
		t.Fatalf("JSON re-load diverged:\n%+v\n%+v", fromText, fromJSON)
	}
	empty, err := load(strings.NewReader(""))
	if err != nil || len(empty.Benchmarks) != 0 {
		t.Fatalf("empty input: (%+v, %v)", empty, err)
	}
	if _, err := load(strings.NewReader("{broken json")); err == nil {
		t.Fatal("expected JSON error")
	}
}

// TestCompareBaseline pins the gate semantics: intersection by name,
// positive delta = slower, only beyond-threshold slowdowns regress,
// and one-sided benchmarks never fail the gate.
func TestCompareBaseline(t *testing.T) {
	base := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA-8", NsPerOp: 1000},
		{Name: "BenchmarkB-8", NsPerOp: 1000},
		{Name: "BenchmarkGone-8", NsPerOp: 1000},
		{Name: "BenchmarkGauge-8", Metrics: map[string]float64{"ratio": 2}},
	}}
	cur := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA-8", NsPerOp: 1100},  // +10%: within threshold
		{Name: "BenchmarkB-8", NsPerOp: 1200},  // +20%: regression
		{Name: "BenchmarkNew-8", NsPerOp: 999}, // no baseline: skipped
		{Name: "BenchmarkGauge-8", Metrics: map[string]float64{"ratio": 2}},
	}}
	diffs, regressed := compareBaseline(cur, base, 0.15)
	if len(diffs) != 2 {
		t.Fatalf("diffs %+v, want 2 paired comparisons", diffs)
	}
	// Sorted worst-first.
	if diffs[0].Name != "BenchmarkB-8" || diffs[1].Name != "BenchmarkA-8" {
		t.Fatalf("order: %+v", diffs)
	}
	if len(regressed) != 1 || regressed[0].Name != "BenchmarkB-8" {
		t.Fatalf("regressed %+v, want only BenchmarkB-8", regressed)
	}
	if d := regressed[0].Delta; d < 0.199 || d > 0.201 {
		t.Fatalf("delta %v, want 0.2", d)
	}
	// A faster current run never regresses, at any threshold.
	fast := &Report{Benchmarks: []Benchmark{{Name: "BenchmarkB-8", NsPerOp: 500}}}
	if _, reg := compareBaseline(fast, base, 0); len(reg) != 0 {
		t.Fatalf("speedup flagged as regression: %+v", reg)
	}
}

func TestParseSkipsMalformed(t *testing.T) {
	rep, err := parse(strings.NewReader("BenchmarkBroken-8\nBenchmarkAlso --- FAIL\nnot a line\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("expected no benchmarks, got %+v", rep.Benchmarks)
	}
	if _, err := parse(strings.NewReader("BenchmarkOdd-8 3 42 ns/op 7\n")); err == nil {
		t.Fatal("expected odd-field error")
	}
	if _, err := parse(strings.NewReader("BenchmarkBad-8 3 xx ns/op\n")); err == nil {
		t.Fatal("expected bad-value error")
	}
}
