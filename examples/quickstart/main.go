// Quickstart: generate a correlated field, extract the paper's
// correlation statistics, and compress it with all three error-bounded
// lossy compressors at the paper's error bounds.
package main

import (
	"fmt"
	"log"

	"lossycorr"
)

func main() {
	// 1. A 2D Gaussian random field with squared-exponential covariance
	// and a known correlation range of 16 grid points.
	field, err := lossycorr.GenerateGaussian(lossycorr.GaussianParams{
		Rows: 256, Cols: 256, Range: 16, Seed: 2024,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. The three correlation statistics of the paper.
	stats, err := lossycorr.Analyze(field, lossycorr.AnalysisOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated global variogram range: %.2f (true: 16)\n", stats.GlobalRange())
	fmt.Printf("std of local variogram ranges:    %.2f\n", stats.LocalRangeStd())
	fmt.Printf("std of local SVD truncation:      %.2f\n\n", stats.LocalSVDStd())

	// 3. Compression ratios per compressor and error bound.
	fmt.Printf("%-11s", "eb")
	for _, name := range lossycorr.Compressors().Names() {
		fmt.Printf(" %12s", name)
	}
	fmt.Println()
	for _, eb := range lossycorr.PaperErrorBounds {
		fmt.Printf("%-11.0e", eb)
		for _, name := range lossycorr.Compressors().Names() {
			res, err := lossycorr.Measure(name, field, eb)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %12.2f", res.Ratio)
		}
		fmt.Println()
	}
}
