// 3D analysis: the paper's future-work direction applied end to end.
// Generate 3D Gaussian volumes with known correlation ranges, estimate
// the isotropic 3D variogram range, compress with the 3D SZ-like codec
// (8×8×8 blocks, 3D Lorenzo), and compare against the per-slice 2D
// analysis the paper performs on Miranda.
package main

import (
	"fmt"
	"log"

	"lossycorr"
)

func main() {
	const n = 32
	const eb = 1e-3

	fmt.Printf("%10s %14s %12s %12s %14s\n",
		"trueRange", "est3DRange", "3D szCR", "maxErr", "slice2DRange")
	for i, rang := range []float64{1.5, 3, 6, 10} {
		vol, err := lossycorr.GenerateGaussian3D(lossycorr.Gaussian3DParams{
			Nz: n, Ny: n, Nx: n, Range: rang, Seed: uint64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}

		// volumetric statistics and compression
		m3, err := lossycorr.EstimateVariogramRange3D(vol, lossycorr.VariogramOptions{Exact: true})
		if err != nil {
			log.Fatal(err)
		}
		ratio, maxErr, err := lossycorr.Measure3D(vol, eb)
		if err != nil {
			log.Fatal(err)
		}

		// the paper's per-slice 2D view of the same volume
		slice := vol.SliceZ(n / 2)
		m2, err := lossycorr.EstimateVariogramRange(slice, lossycorr.VariogramOptions{Exact: true})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%10.1f %14.3f %12.2f %12.2e %14.3f\n",
			rang, m3.Range, ratio, maxErr, m2.Range)
	}
	fmt.Println("\n3D and per-slice 2D range estimates agree, and the 3D codec's")
	fmt.Println("ratio grows with the range — the 2D findings carry to 3D.")
}
