// 3D analysis on the unified pipeline: volumes flow through the same
// field abstraction, statistics, codec registry, and predictor as 2D
// grids. Generate 3D Gaussian volumes with known correlation ranges,
// extract all three correlation statistics (H×H×H windows), sweep the
// registered 3D codecs, train a predictor on volumes, and compare the
// volumetric view against the paper's per-slice 2D analysis.
package main

import (
	"fmt"
	"log"

	"lossycorr"
)

func main() {
	const n = 32
	const h = 16 // local window edge (H×H×H)
	const eb = 1e-3

	var fields []*lossycorr.Field
	var labels []float64
	fmt.Printf("%10s %12s %12s %12s %12s %14s\n",
		"trueRange", "est3DRange", "locRngStd", "locSVDStd", "szCR", "slice2DRange")
	for i, rang := range []float64{1.5, 3, 6, 10} {
		vol, err := lossycorr.GenerateGaussian3D(lossycorr.Gaussian3DParams{
			Nz: n, Ny: n, Nx: n, Range: rang, Seed: uint64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		f := lossycorr.FieldFromVolume(vol)

		// the full statistics vector of the volume, one Analyze call
		stats, err := lossycorr.AnalyzeVolume(vol, lossycorr.AnalysisOptions{Window: h})
		if err != nil {
			log.Fatal(err)
		}
		res, err := lossycorr.MeasureField("sz-like-3d", f, eb)
		if err != nil {
			log.Fatal(err)
		}

		// the paper's per-slice 2D view of the same volume
		m2, err := lossycorr.EstimateVariogramRange(vol.SliceZ(n/2), lossycorr.VariogramOptions{Exact: true})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("%10.1f %12.3f %12.3f %12.3f %12.2f %14.3f\n",
			rang, stats.GlobalRange(), stats.LocalRangeStd(), stats.LocalSVDStd(),
			res.Ratio, m2.Range)
		fields = append(fields, f)
		labels = append(labels, rang)
	}

	// the forward application on volumes: train CR models, pick a codec
	ms, err := lossycorr.MeasureFieldSet("vols", fields, labels, lossycorr.MeasureOptions{
		Analysis:    lossycorr.AnalysisOptions{SkipLocal: true},
		ErrorBounds: []float64{eb},
	})
	if err != nil {
		log.Fatal(err)
	}
	p, err := lossycorr.TrainPredictor(ms, lossycorr.XGlobalRange)
	if err != nil {
		log.Fatal(err)
	}
	probe, err := lossycorr.GenerateGaussian3D(lossycorr.Gaussian3DParams{
		Nz: n, Ny: n, Nx: n, Range: 4, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats, err := lossycorr.AnalyzeVolume(probe, lossycorr.AnalysisOptions{SkipLocal: true})
	if err != nil {
		log.Fatal(err)
	}
	sel, err := p.SelectCompressor(eb, stats)
	if err != nil {
		log.Fatal(err)
	}
	actual, err := lossycorr.MeasureField(sel.Compressor, lossycorr.FieldFromVolume(probe), eb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunseen volume (range 4): selected %s, predicted CR %.2f, actual %.2f\n",
		sel.Compressor, sel.Predicted, actual.Ratio)
	fmt.Println("3D and per-slice 2D ranges agree, ratios grow with range, and the")
	fmt.Println("predictor picks a 3D codec — the 2D findings carry to 3D unchanged.")
}
