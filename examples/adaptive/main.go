// Adaptive compressor selection: the forward application the paper
// motivates. Train CR = α + β·log(range) models on a sweep of synthetic
// fields, then — for unseen fields — estimate the variogram range,
// predict each compressor's ratio, pick the winner, and verify against
// the measured truth.
package main

import (
	"fmt"
	"log"

	"lossycorr"
)

func main() {
	const size = 128
	const eb = 1e-3

	// training sweep: one field per range
	var fields []*lossycorr.Grid
	var labels []float64
	for i, rang := range []float64{2, 4, 8, 12, 16, 24} {
		f, err := lossycorr.GenerateGaussian(lossycorr.GaussianParams{
			Rows: size, Cols: size, Range: rang, Seed: uint64(100 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		fields = append(fields, f)
		labels = append(labels, rang)
	}
	ms, err := lossycorr.MeasureFields("train", fields, labels, lossycorr.MeasureOptions{
		Analysis:    lossycorr.AnalysisOptions{SkipLocal: true},
		ErrorBounds: []float64{eb},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fitted models (CR = α + β·ln(range)):")
	for _, s := range lossycorr.BuildSeries(ms, lossycorr.XGlobalRange) {
		fmt.Printf("  %-11s %s\n", s.Compressor, s.Fit)
	}

	predictor, err := lossycorr.TrainPredictor(ms, lossycorr.XGlobalRange)
	if err != nil {
		log.Fatal(err)
	}

	// unseen fields with different smoothness
	fmt.Println("\nselection on unseen fields:")
	for i, rang := range []float64{3, 10, 30} {
		f, err := lossycorr.GenerateGaussian(lossycorr.GaussianParams{
			Rows: size, Cols: size, Range: rang, Seed: uint64(900 + i),
		})
		if err != nil {
			log.Fatal(err)
		}
		stats, err := lossycorr.Analyze(f, lossycorr.AnalysisOptions{SkipLocal: true})
		if err != nil {
			log.Fatal(err)
		}
		sel, err := predictor.SelectCompressor(eb, stats)
		if err != nil {
			log.Fatal(err)
		}
		actual, err := lossycorr.Measure(sel.Compressor, f, eb)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  range≈%5.2f → %-11s predicted CR %6.2f, measured CR %6.2f\n",
			stats.GlobalRange(), sel.Compressor, sel.Predicted, actual.Ratio)
	}
}
