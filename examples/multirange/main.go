// Multi-range fields: demonstrates the paper's Section V-B finding that
// the *global* variogram range is a poor explanatory statistic for
// fields mixing several correlation scales, while the *local* statistics
// (std of windowed variogram ranges) separate them much better.
package main

import (
	"fmt"
	"log"

	"lossycorr"
)

func main() {
	const size = 128
	const eb = 1e-3

	// pairs with (roughly) constant geometric mean but growing spread:
	// the global variogram range barely separates them, while the local
	// statistics track the mixture — the paper's Section V-B point.
	pairs := [][2]float64{{8, 8}, {7, 9}, {6, 11}, {5, 13}, {4, 16}, {3, 21}, {2, 32}, {1.5, 43}}
	var fields []*lossycorr.Grid
	for i, p := range pairs {
		f, err := lossycorr.GenerateMultiGaussian(lossycorr.MultiGaussianParams{
			Rows: size, Cols: size, Ranges: p[:], Seed: uint64(i + 1),
		})
		if err != nil {
			log.Fatal(err)
		}
		fields = append(fields, f)
	}
	ms, err := lossycorr.MeasureFields("multi", fields, nil, lossycorr.MeasureOptions{
		ErrorBounds: []float64{eb},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("multi-range Gaussian fields at eb=1e-3:")
	fmt.Printf("%10s %12s %12s %12s\n", "ranges", "globRange", "locRngStd", "sz-like CR")
	for i, m := range ms {
		var szCR float64
		for _, r := range m.Results {
			if r.Compressor == "sz-like" {
				szCR = r.Ratio
			}
		}
		fmt.Printf("%4g+%-5g %12.3f %12.3f %12.2f\n",
			pairs[i][0], pairs[i][1], m.Stats.GlobalRange(), m.Stats.LocalRangeStd(), szCR)
	}

	fmt.Println("\nexplanatory power of each statistic (R² of CR = α + β·log x):")
	for _, sel := range []lossycorr.StatSelector{lossycorr.XGlobalRange, lossycorr.XLocalRangeStd} {
		for _, s := range lossycorr.BuildSeries(ms, sel) {
			if s.Compressor != "sz-like" || !s.FitOK {
				continue
			}
			fmt.Printf("  %-55s R²=%.3f\n", sel, s.Fit.R2)
		}
	}
}
