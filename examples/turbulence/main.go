// Turbulence pipeline: the Miranda-substitute workflow. Run the
// built-in compressible-Euler solver (Kelvin–Helmholtz instability),
// take velocityx snapshots at several times, and show how correlation
// statistics and compression ratios evolve as the flow becomes more
// turbulent — the Figure 4/7 story on locally generated data.
package main

import (
	"fmt"
	"log"

	"lossycorr"
)

func main() {
	const n = 128
	slices, times, err := lossycorr.TurbulenceSlices(n, 4, 1.6, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%8s %10s %10s %10s %12s %12s\n",
		"time", "globRange", "locRngStd", "locSVDStd", "sz-like CR", "zfp-like CR")
	for i, f := range slices {
		stats, err := lossycorr.Analyze(f, lossycorr.AnalysisOptions{})
		if err != nil {
			log.Fatal(err)
		}
		sz, err := lossycorr.Measure("sz-like", f, 1e-3)
		if err != nil {
			log.Fatal(err)
		}
		zfp, err := lossycorr.Measure("zfp-like", f, 1e-3)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8.3f %10.3f %10.3f %10.3f %12.2f %12.2f\n",
			times[i], stats.GlobalRange(), stats.LocalRangeStd(), stats.LocalSVDStd(),
			sz.Ratio, zfp.Ratio)
	}
	fmt.Println("\nlater snapshots are more turbulent: shorter correlation")
	fmt.Println("ranges and higher local heterogeneity give lower ratios.")
}
