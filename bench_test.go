package lossycorr

// The benchmark harness regenerates every figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index) and measures
// component throughput. Figure benches run the full pipeline — dataset
// generation, statistic extraction, compression across codecs and error
// bounds, and the α + β·log(x) fits — at a laptop-scale default of
// 96×96 fields; set LOSSYCORR_N=1028 to reproduce at paper scale.
//
// Reported custom metrics: CR* gauges are mean compression ratios of a
// series, beta* gauges the fitted log-regression slopes (the paper's β)
// and R2* their goodness of fit, so trend direction and strength are
// visible straight from `go test -bench`.

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"strconv"
	"testing"

	"lossycorr/internal/core"
	"lossycorr/internal/fft"
	"lossycorr/internal/field"
	"lossycorr/internal/gaussian"
	"lossycorr/internal/grid"
	"lossycorr/internal/hydro"
	"lossycorr/internal/lossless"
	"lossycorr/internal/parallel"
	"lossycorr/internal/svdstat"
	"lossycorr/internal/szlike"
	"lossycorr/internal/variogram"
	"lossycorr/internal/xrand"
)

func benchSize() int {
	if s := os.Getenv("LOSSYCORR_N"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 32 {
			return n
		}
	}
	return 96
}

func benchConfig() FigureConfig {
	return FigureConfig{
		Size:          benchSize(),
		Replicates:    1,
		MirandaSlices: 3,
		Seed:          1,
	}
}

// reportSeries publishes per-series gauges for a figure.
func reportSeries(b *testing.B, fig *core.Figure) {
	b.Helper()
	for _, p := range fig.Panels {
		for _, s := range p.Series {
			if len(s.Y) == 0 {
				continue
			}
			var mean float64
			for _, y := range s.Y {
				mean += y
			}
			mean /= float64(len(s.Y))
			tag := fmt.Sprintf("%s@%.0e", s.Compressor, s.ErrorBound)
			b.ReportMetric(mean, "CR:"+tag)
			if s.FitOK {
				b.ReportMetric(s.Fit.Beta, "beta:"+tag)
				b.ReportMetric(s.Fit.R2, "R2:"+tag)
			}
		}
	}
}

// BenchmarkFig1Variogram regenerates the illustrative variogram of
// Figure 1 (empirical + fitted + theoretical curves).
func BenchmarkFig1Variogram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSuite(benchConfig())
		if err := s.Figure1(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig2Gallery regenerates the dataset gallery of Figure 2.
func BenchmarkFig2Gallery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := NewSuite(benchConfig())
		if err := s.Figure2(io.Discard, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3GaussianGlobalRange regenerates Figure 3: CR vs global
// variogram range on single-range and multi-range Gaussian fields.
func BenchmarkFig3GaussianGlobalRange(b *testing.B) {
	var fig *core.Figure
	for i := 0; i < b.N; i++ {
		s := NewSuite(benchConfig())
		var err error
		fig, err = s.Figure3()
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, fig)
}

// BenchmarkFig4MirandaGlobalRange regenerates Figure 4: CR vs global
// variogram range on the Miranda-substitute turbulence slices.
func BenchmarkFig4MirandaGlobalRange(b *testing.B) {
	var fig *core.Figure
	for i := 0; i < b.N; i++ {
		s := NewSuite(benchConfig())
		var err error
		fig, err = s.Figure4()
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, fig)
}

// BenchmarkFig5GaussianLocalRangeStd regenerates Figure 5: CR vs std of
// local variogram ranges (H=32).
func BenchmarkFig5GaussianLocalRangeStd(b *testing.B) {
	var fig *core.Figure
	for i := 0; i < b.N; i++ {
		s := NewSuite(benchConfig())
		var err error
		fig, err = s.Figure5()
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, fig)
}

// BenchmarkFig6GaussianLocalSVD regenerates Figure 6: CR vs std of
// local SVD truncation levels (H=32), SZ and ZFP only.
func BenchmarkFig6GaussianLocalSVD(b *testing.B) {
	var fig *core.Figure
	for i := 0; i < b.N; i++ {
		s := NewSuite(benchConfig())
		var err error
		fig, err = s.Figure6()
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, fig)
}

// BenchmarkFig7MirandaLocalStats regenerates Figure 7: CR vs both local
// statistics on the Miranda-substitute slices.
func BenchmarkFig7MirandaLocalStats(b *testing.B) {
	var fig *core.Figure
	for i := 0; i < b.N; i++ {
		s := NewSuite(benchConfig())
		var err error
		fig, err = s.Figure7()
		if err != nil {
			b.Fatal(err)
		}
	}
	reportSeries(b, fig)
}

// ---- component throughput -------------------------------------------------

func benchField(b *testing.B, rang float64) *grid.Grid {
	b.Helper()
	f, err := gaussian.Generate(gaussian.Params{Rows: 256, Cols: 256, Range: rang, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	return f
}

func benchCompress(b *testing.B, name string, eb float64) {
	f := benchField(b, 16)
	c, err := Compressors().Get(name)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	var size int
	for i := 0; i < b.N; i++ {
		data, err := c.Compress(f, eb)
		if err != nil {
			b.Fatal(err)
		}
		size = len(data)
	}
	b.ReportMetric(float64(f.SizeBytes())/float64(size), "ratio")
}

func benchDecompress(b *testing.B, name string, eb float64) {
	f := benchField(b, 16)
	c, err := Compressors().Get(name)
	if err != nil {
		b.Fatal(err)
	}
	data, err := c.Compress(f, eb)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decompress(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSZLikeCompress(b *testing.B)      { benchCompress(b, "sz-like", 1e-3) }
func BenchmarkSZLikeDecompress(b *testing.B)    { benchDecompress(b, "sz-like", 1e-3) }
func BenchmarkZFPLikeCompress(b *testing.B)     { benchCompress(b, "zfp-like", 1e-3) }
func BenchmarkZFPLikeDecompress(b *testing.B)   { benchDecompress(b, "zfp-like", 1e-3) }
func BenchmarkMGARDLikeCompress(b *testing.B)   { benchCompress(b, "mgard-like", 1e-3) }
func BenchmarkMGARDLikeDecompress(b *testing.B) { benchDecompress(b, "mgard-like", 1e-3) }

// ---- extensions (paper future work) ----------------------------------------

// BenchmarkExtPSNRvsRange explores the paper's future-work question:
// how does correlation structure affect reconstruction quality (PSNR)?
// It reports fitted PSNR = α + β·log(range) slopes per codec.
func BenchmarkExtPSNRvsRange(b *testing.B) {
	var series []core.Series
	for i := 0; i < b.N; i++ {
		s := NewSuite(benchConfig())
		ms, err := s.SingleRangeMeasurements()
		if err != nil {
			b.Fatal(err)
		}
		series = BuildMetricSeries(ms, XGlobalRange, YPSNR)
	}
	for _, sr := range series {
		if sr.FitOK {
			tag := fmt.Sprintf("%s@%.0e", sr.Compressor, sr.ErrorBound)
			b.ReportMetric(sr.Fit.Beta, "psnrBeta:"+tag)
		}
	}
}

// BenchmarkExtEntropyEstimator compares the related-work entropy-based
// CR estimator against measured sz-like ratios across the range sweep.
func BenchmarkExtEntropyEstimator(b *testing.B) {
	n := benchSize()
	var entropyRatio, actualRatio float64
	for i := 0; i < b.N; i++ {
		f, err := GenerateGaussian(GaussianParams{Rows: n, Cols: n, Range: float64(n) / 16, Seed: 3})
		if err != nil {
			b.Fatal(err)
		}
		h, err := QuantizedEntropy(f, 1e-3)
		if err != nil {
			b.Fatal(err)
		}
		entropyRatio = EstimateEntropyRatio(h)
		res, err := Measure("sz-like", f, 1e-3)
		if err != nil {
			b.Fatal(err)
		}
		actualRatio = res.Ratio
	}
	b.ReportMetric(entropyRatio, "entropyCR")
	b.ReportMetric(actualRatio, "szCR")
}

// BenchmarkExtSampledStatistics measures the sampling-fraction
// accuracy/cost trade-off of the windowed statistics (the paper's
// future-work fast proxy).
func BenchmarkExtSampledStatistics(b *testing.B) {
	n := benchSize()
	f, err := GenerateGaussian(GaussianParams{Rows: n, Cols: n, Range: float64(n) / 16, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	for _, frac := range []float64{0.1, 0.25, 0.5, 1} {
		frac := frac
		b.Run(fmt.Sprintf("frac=%.2f", frac), func(b *testing.B) {
			var est float64
			for i := 0; i < b.N; i++ {
				var err error
				est, err = SampledLocalRangeStd(f, 32, SamplingOptions{Fraction: frac, Seed: uint64(i)})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(est, "rangeStd")
		})
	}
}

// BenchmarkExt3DPipeline measures the 3D extension end to end: 3D field
// generation, 3D variogram range estimation, and 3D SZ-like
// compression, reporting the estimated range and ratio.
func BenchmarkExt3DPipeline(b *testing.B) {
	var est, ratio float64
	for i := 0; i < b.N; i++ {
		vol, err := GenerateGaussian3D(Gaussian3DParams{Nz: 32, Ny: 32, Nx: 32, Range: 4, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		m, err := EstimateVariogramRange3D(vol, VariogramOptions{MaxPairs: 200000})
		if err != nil {
			b.Fatal(err)
		}
		est = m.Range
		r, _, err := Measure3D(vol, 1e-3)
		if err != nil {
			b.Fatal(err)
		}
		ratio = r
	}
	b.ReportMetric(est, "estRange")
	b.ReportMetric(ratio, "ratio")
}

// BenchmarkUnified3DPipeline exercises the dimension-generic pipeline
// end to end on a volume: AnalyzeVolume (all three statistics over
// H×H×H windows) plus a registry-dispatched 3D codec sweep — the same
// code path the 2D benchmarks above exercise, through the field layer.
func BenchmarkUnified3DPipeline(b *testing.B) {
	vol, err := GenerateGaussian3D(Gaussian3DParams{Nz: 32, Ny: 32, Nx: 32, Range: 4, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	f := FieldFromVolume(vol)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, err := AnalyzeField(f, AnalysisOptions{Window: 16})
		if err != nil {
			b.Fatal(err)
		}
		if stats.GlobalRange() <= 0 {
			b.Fatal("degenerate analysis")
		}
		for _, name := range CompressorsFor(3) {
			res, err := MeasureField(name, f, 1e-3)
			if err != nil {
				b.Fatal(err)
			}
			ratio = res.Ratio
		}
	}
	b.ReportMetric(ratio, "lastRatio")
}

// ---- ablations --------------------------------------------------------------

// BenchmarkAblationSZPredictors quantifies what each of the SZ-like
// codec's two predictors contributes: auto selection vs Lorenzo-only vs
// regression-only on the same field (DESIGN.md §3).
func BenchmarkAblationSZPredictors(b *testing.B) {
	f := benchField(b, 16)
	for _, c := range []szlike.Compressor{
		{Mode: szlike.PredictorAuto},
		{Mode: szlike.PredictorLorenzoOnly},
		{Mode: szlike.PredictorRegressionOnly},
	} {
		c := c
		b.Run(c.Name(), func(b *testing.B) {
			b.SetBytes(int64(f.SizeBytes()))
			var size int
			for i := 0; i < b.N; i++ {
				data, err := c.Compress(f, 1e-3)
				if err != nil {
					b.Fatal(err)
				}
				size = len(data)
			}
			b.ReportMetric(float64(f.SizeBytes())/float64(size), "ratio")
		})
	}
}

// BenchmarkAblationByteShuffle measures how much the byte-shuffle
// filter improves DEFLATE on raw float64 field data — the rationale for
// shuffling fixed-width records ahead of the lossless stage.
func BenchmarkAblationByteShuffle(b *testing.B) {
	f := benchField(b, 16)
	raw := make([]byte, 0, f.SizeBytes())
	for _, v := range f.Data {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
		raw = append(raw, tmp[:]...)
	}
	for _, shuffled := range []bool{false, true} {
		name := "plain"
		if shuffled {
			name = "shuffled"
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(int64(len(raw)))
			var size int
			for i := 0; i < b.N; i++ {
				in := raw
				if shuffled {
					var err error
					in, err = lossless.Shuffle(raw, 8)
					if err != nil {
						b.Fatal(err)
					}
				}
				out, err := lossless.Compress(in)
				if err != nil {
					b.Fatal(err)
				}
				size = len(out)
			}
			b.ReportMetric(float64(len(raw))/float64(size), "ratio")
		})
	}
}

// BenchmarkGaussianGenerate measures the circulant-embedding sampler.
func BenchmarkGaussianGenerate(b *testing.B) {
	s, err := gaussian.NewSampler(gaussian.Params{Rows: 256, Cols: 256, Range: 16})
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(1)
	b.SetBytes(256 * 256 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Sample(rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVariogramGlobal measures global range estimation.
func BenchmarkVariogramGlobal(b *testing.B) {
	f := benchField(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := variogram.GlobalRange(f, variogram.Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalRangeStd measures the windowed variogram statistic.
func BenchmarkLocalRangeStd(b *testing.B) {
	f := benchField(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := variogram.LocalRangeStd(f, 32, variogram.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLocalSVDStd measures the windowed SVD statistic.
func BenchmarkLocalSVDStd(b *testing.B) {
	f := benchField(b, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := svdstat.LocalStd(f, 32, 0.99); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- parallel scaling -------------------------------------------------------

// benchWorkerCounts are the pool sizes the scaling benchmarks sweep.
var benchWorkerCounts = []int{1, 2, 4, 8}

// bench512Field draws the 512×512 field the parallel-scaling
// benchmarks share (generation happens outside the timed region).
func bench512Field(b *testing.B) *grid.Grid {
	b.Helper()
	f, err := gaussian.Generate(gaussian.Params{Rows: 512, Cols: 512, Range: 32, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkLocalRangeStdParallel sweeps worker counts over the windowed
// variogram statistic on a 512×512 field. Per-window work is uniform
// and windows are independent, so throughput should scale near-linearly
// until the core count is exhausted.
func BenchmarkLocalRangeStdParallel(b *testing.B) {
	f := bench512Field(b)
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var ref float64
			for i := 0; i < b.N; i++ {
				v, err := variogram.LocalRangeStd(f, 32, variogram.Options{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				if ref == 0 {
					ref = v
				} else if v != ref {
					b.Fatalf("nondeterministic result: %v vs %v", v, ref)
				}
			}
			b.ReportMetric(ref, "rangeStd")
		})
	}
}

// BenchmarkLocalSVDStdParallel sweeps worker counts over the windowed
// SVD statistic on a 512×512 field.
func BenchmarkLocalSVDStdParallel(b *testing.B) {
	f := bench512Field(b)
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := svdstat.LocalStdWith(f, 32, svdstat.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyzeParallel sweeps worker counts over the full analysis
// (global range concurrent with both windowed statistics) on a 512×512
// field — the orchestration-layer speedup of core.Analyze.
func BenchmarkAnalyzeParallel(b *testing.B) {
	f := bench512Field(b)
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Analyze(f, core.AnalysisOptions{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyzeField pits the registry-driven kernel engine
// (core.AnalyzeField: registry selection, Request.Opt maps, interface
// dispatch per kernel, keyed result assembly) against a hand-wired
// composition of the same three statistics through their direct
// package entry points. The engine/direct ns/op ratio is the
// indirection cost the kernel refactor is allowed to add: under 2%.
func BenchmarkAnalyzeField(b *testing.B) {
	g := bench512Field(b)
	f := field.FromGrid(g)
	w := runtime.NumCPU()
	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.AnalyzeField(f, core.AnalysisOptions{Workers: w}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("direct", func(b *testing.B) {
		vo := variogram.Options{Workers: w}
		so := svdstat.Options{Frac: svdstat.DefaultVarianceFraction, Workers: w}
		for i := 0; i < b.N; i++ {
			var errG, errL, errS error
			parallel.Do(w,
				func() { _, errG = variogram.GlobalRangeField(f, vo) },
				func() { _, errL = variogram.LocalRangeStdField(f, core.DefaultWindow, vo) },
				func() { _, errS = svdstat.LocalStdField(f, core.DefaultWindow, so) },
			)
			for _, err := range []error{errG, errL, errS} {
				if err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkMeasureFieldsParallel sweeps worker counts over the batch
// measurement pipeline (analysis + three codecs × one bound per field).
func BenchmarkMeasureFieldsParallel(b *testing.B) {
	var fields []*grid.Grid
	var labels []float64
	for i, rang := range []float64{8, 16, 32, 64} {
		f, err := gaussian.Generate(gaussian.Params{Rows: 256, Cols: 256, Range: rang, Seed: uint64(60 + i)})
		if err != nil {
			b.Fatal(err)
		}
		fields = append(fields, f)
		labels = append(labels, rang)
	}
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := MeasureFields("bench", fields, labels, MeasureOptions{
					ErrorBounds: []float64{1e-3},
					Workers:     w,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVariogramFFTMiranda runs the real-input FFT variogram
// engine on a Miranda-shaped 256×384×384 volume — the paper-scale run
// the memory work exists for. Gated behind LOSSYCORR_MIRANDA=1: the
// transform working set is ~3.2 GB (the PR 3 complex-path engine
// needed ~6.4 GB for the same shape, reported as fftComplexRefMB), far
// beyond a CI smoke budget.
func BenchmarkVariogramFFTMiranda(b *testing.B) {
	if os.Getenv("LOSSYCORR_MIRANDA") == "" {
		b.Skip("set LOSSYCORR_MIRANDA=1 to run the 256×384×384 benchmark (~3.2 GB)")
	}
	shape := []int{256, 384, 384}
	f := field.New(shape...)
	rng := xrand.New(21)
	for i := range f.Data {
		f.Data[i] = rng.NormFloat64()
	}
	maxLag := 128 // default cutoff: min extent / 2
	refTotal := int64(1)
	for _, d := range shape {
		refTotal *= int64(fft.NextPow2(d + maxLag))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fft.ResetPeakBytes()
		if _, err := variogram.ComputeField(f, variogram.Options{FFT: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(fft.PeakBytes())/(1<<20), "fftPeakMB")
	b.ReportMetric(float64(3*16*refTotal)/(1<<20), "fftComplexRefMB")
	// Process-level confirmation of the transform-buffer numbers: the
	// Go runtime's OS-obtained memory after the paper-scale run.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	b.ReportMetric(float64(ms.Sys)/(1<<20), "memSysMB")
}

// BenchmarkHydroStep measures one time step of the Euler solver at the
// Miranda-substitute resolution.
func BenchmarkHydroStep(b *testing.B) {
	s := hydro.KelvinHelmholtz(128, 128, 1)
	b.SetBytes(128 * 128 * 4 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
